// Structural tests for the workload DAG builders (CG, BiCGStab, GNN, ResNet)
// and their WorkloadRegistry spec equivalents.
#include <gtest/gtest.h>

#include "sim/workload_registry.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

// Every builder below is also reachable as a registry kind; the spec route
// must produce structurally identical DAGs.
TEST(WorkloadRegistryPort, SpecsMatchDirectBuilders) {
  auto& r = sim::WorkloadRegistry::global();
  EXPECT_EQ(r.resolve("cg:m=1000,nnz=9000,n=8,iters=10").dag->ops().size(), 80u);
  EXPECT_EQ(r.resolve("bicgstab:m=5000,nnz=50000,iters=10").dag->ops().size(), 90u);
  EXPECT_EQ(r.resolve("gnn:m=1000,nnz=5000").dag->ops().size(), 2u);
  EXPECT_EQ(r.resolve("resnet").dag->ops().size(), 5u);
  EXPECT_EQ(r.resolve("resnet").dag->tensors().size(),
            workloads::build_resnet_block_dag({}).tensors().size());
  EXPECT_EQ(r.resolve("spmv:m=1000,nnz=9000,iters=5").dag->ops().size(), 5u);
  EXPECT_EQ(r.resolve("sddmm:m=1000,nnz=8000").dag->ops().size(), 2u);
}

TEST(BaseName, StripsVersionSuffix) {
  EXPECT_EQ(workloads::base_name("S@3"), "S");
  EXPECT_EQ(workloads::base_name("Gamma@10"), "Gamma");
  EXPECT_EQ(workloads::base_name("A"), "A");
}

TEST(CgDag, OpAndTensorCounts) {
  workloads::CgShape s;
  s.m = 1000;
  s.n = 8;
  s.nnz = 9000;
  s.iterations = 10;
  const auto dag = workloads::build_cg_dag(s);
  EXPECT_EQ(dag.ops().size(), 80u);           // 8 ops per iteration
  EXPECT_EQ(dag.tensors().size(), 85u);       // 8 per iter + A + 4 initials
  EXPECT_EQ(dag.external_tensors().size(), 5u);
  dag.validate();
}

TEST(CgDag, Dominances) {
  workloads::CgShape s;
  s.m = 100000;
  s.n = 16;
  s.nnz = 900000;
  s.iterations = 1;
  const auto dag = workloads::build_cg_dag(s);
  auto dom = [&](const std::string& name) {
    for (const auto& op : dag.ops())
      if (op.name == name) return op.dominance();
    ADD_FAILURE() << name;
    return ir::Dominance::Balanced;
  };
  EXPECT_EQ(dom("1@1"), ir::Dominance::Uncontracted);  // compressed contraction
  EXPECT_EQ(dom("2a@1"), ir::Dominance::Contracted);
  EXPECT_EQ(dom("3@1"), ir::Dominance::Uncontracted);
  EXPECT_EQ(dom("5@1"), ir::Dominance::Contracted);
}

TEST(CgDag, SpmmMacsUseNnz) {
  workloads::CgShape s;
  s.m = 1000;
  s.n = 8;
  s.nnz = 9000;
  s.iterations = 1;
  const auto dag = workloads::build_cg_dag(s);
  EXPECT_EQ(dag.op(0).macs(), 9000 * 8);
}

TEST(CgDag, CrossIterationEdgesExist) {
  workloads::CgShape s;
  s.m = 1000;
  s.n = 8;
  s.nnz = 9000;
  s.iterations = 2;
  const auto dag = workloads::build_cg_dag(s);
  int cross = 0;
  for (const auto& e : dag.edges()) {
    const auto& src = dag.op(e.src).name;
    const auto& dst = dag.op(e.dst).name;
    if (src.ends_with("@1") && dst.ends_with("@2")) ++cross;
  }
  // P feeds 1,2a,3,7; R feeds 4 (accumulation); X feeds 3; Gamma feeds 2b,6.
  EXPECT_GE(cross, 8);
}

TEST(CgDag, LastXIsResult) {
  workloads::CgShape s;
  s.m = 1000;
  s.n = 8;
  s.nnz = 9000;
  s.iterations = 3;
  const auto dag = workloads::build_cg_dag(s);
  int results = 0;
  for (const auto& t : dag.tensors())
    if (t.is_result) {
      ++results;
      EXPECT_EQ(t.name, "X@3");
    }
  EXPECT_EQ(results, 1);
}

TEST(CgDag, RejectsBadShape) {
  workloads::CgShape s;  // all zeros
  EXPECT_THROW(workloads::build_cg_dag(s), Error);
}

TEST(BiCgStabDag, Structure) {
  workloads::BiCgStabShape s;
  s.m = 5000;
  s.nnz = 50000;
  s.iterations = 10;
  const auto dag = workloads::build_bicgstab_dag(s);
  EXPECT_EQ(dag.ops().size(), 90u);  // 9 ops per iteration
  dag.validate();
  int results = 0;
  for (const auto& t : dag.tensors())
    if (t.is_result) ++results;
  EXPECT_EQ(results, 1);
}

TEST(BiCgStabDag, DotsAreContracted) {
  workloads::BiCgStabShape s;
  s.m = 5000;
  s.nnz = 50000;
  s.iterations = 1;
  const auto dag = workloads::build_bicgstab_dag(s);
  for (const auto& op : dag.ops()) {
    if (op.name.starts_with("rho") || op.name.starts_with("alpha") ||
        op.name.starts_with("omega")) {
      EXPECT_EQ(op.dominance(), ir::Dominance::Contracted) << op.name;
    }
    if (op.name.starts_with("spmv")) {
      EXPECT_EQ(op.dominance(), ir::Dominance::Uncontracted) << op.name;
    }
  }
}

TEST(GnnDag, Structure) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  EXPECT_EQ(dag.ops().size(), 2u);
  EXPECT_EQ(dag.edges().size(), 1u);
  EXPECT_EQ(dag.external_tensors().size(), 3u);  // A_hat, X, W
  dag.validate();
}

TEST(GnnDag, ShapesMatchTable6) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  const auto& h = dag.tensor(dag.edge(0).tensor);
  EXPECT_EQ(h.dim_of("m"), 2708);
  EXPECT_EQ(h.dim_of("n"), 1433);
  EXPECT_EQ(dag.op(0).macs(), 9464 * 1433);
}

TEST(ResNetDag, Structure) {
  const auto dag = workloads::build_resnet_block_dag({});
  EXPECT_EQ(dag.ops().size(), 5u);  // conv0..conv3 + add
  EXPECT_EQ(dag.edges().size(), 5u);
  dag.validate();
}

TEST(ResNetDag, AllNodesBalanced) {
  const auto dag = workloads::build_resnet_block_dag({});
  for (const auto& op : dag.ops())
    EXPECT_EQ(op.dominance(), ir::Dominance::Balanced) << op.name;
}

TEST(ResNetDag, SixteenBitWords) {
  const auto dag = workloads::build_resnet_block_dag({});
  for (const auto& t : dag.tensors()) EXPECT_EQ(t.word_bytes, 2u) << t.name;
}

TEST(ResNetDag, Conv2WindowMacs) {
  const auto dag = workloads::build_resnet_block_dag({});
  for (const auto& op : dag.ops()) {
    if (op.name == "conv2") {
      EXPECT_EQ(op.macs(), 784 * 128 * 9 * 128);
    }
  }
}

}  // namespace
