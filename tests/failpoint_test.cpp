// Tests for the deterministic fault-injection registry (common/failpoint):
// spec parsing, trigger semantics (every hit / N-th hit / key match), hit
// counting, and the CELLO_FAILPOINTS-style batch arming string.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace {

using namespace cello;

/// Every test leaves the process-global registry clean for the next one.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(failpoint::hit("nowhere").has_value());
  EXPECT_NO_THROW(failpoint::maybe_throw("nowhere"));
  EXPECT_EQ(failpoint::hit_count("nowhere"), 0u);
}

TEST_F(FailpointTest, ThrowActionFiresOnEveryHit) {
  failpoint::arm("site.a", "throw");
  EXPECT_THROW(failpoint::maybe_throw("site.a"), Error);
  EXPECT_THROW(failpoint::maybe_throw("site.a"), Error);
  EXPECT_EQ(failpoint::hit_count("site.a"), 2u);
  // Other sites are untouched.
  EXPECT_NO_THROW(failpoint::maybe_throw("site.b"));
}

TEST_F(FailpointTest, ExplicitStarTriggerMatchesEveryHit) {
  failpoint::arm("site.star", "throw@*");
  EXPECT_THROW(failpoint::maybe_throw("site.star"), Error);
  EXPECT_THROW(failpoint::maybe_throw("site.star"), Error);
}

TEST_F(FailpointTest, NthHitTriggerFiresExactlyOnce) {
  failpoint::arm("site.nth", "throw@3");
  EXPECT_NO_THROW(failpoint::maybe_throw("site.nth"));
  EXPECT_NO_THROW(failpoint::maybe_throw("site.nth"));
  EXPECT_THROW(failpoint::maybe_throw("site.nth"), Error);  // hit 3
  EXPECT_NO_THROW(failpoint::maybe_throw("site.nth"));      // hit 4: past it
  EXPECT_EQ(failpoint::hit_count("site.nth"), 4u);
}

TEST_F(FailpointTest, KeyTriggerMatchesOnlyThatKey) {
  failpoint::arm("site.key", "throw@key=7");
  EXPECT_NO_THROW(failpoint::maybe_throw("site.key", "6"));
  EXPECT_THROW(failpoint::maybe_throw("site.key", "7"), Error);
  EXPECT_NO_THROW(failpoint::maybe_throw("site.key", "8"));
  // Key triggers keep firing: every hit with the key faults.
  EXPECT_THROW(failpoint::maybe_throw("site.key", "7"), Error);
}

TEST_F(FailpointTest, ErrorMessageNamesSiteAndKey) {
  failpoint::arm("sweep.cell", "throw@key=5");
  try {
    failpoint::maybe_throw("sweep.cell", "5");
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep.cell"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'5'"), std::string::npos) << msg;
  }
}

TEST_F(FailpointTest, NonThrowActionsAreReturnedToCaller) {
  failpoint::arm("io.short", "short_write");
  failpoint::arm("io.torn", "torn_write@1");
  const auto s = failpoint::hit("io.short");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->action, failpoint::Action::ShortWrite);
  const auto t = failpoint::hit("io.torn");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->action, failpoint::Action::TornWrite);
  EXPECT_FALSE(failpoint::hit("io.torn").has_value());  // @1 already consumed
}

TEST_F(FailpointTest, DisarmStopsFiringAndRearmResetsHitCounter) {
  failpoint::arm("site.d", "throw@2");
  EXPECT_NO_THROW(failpoint::maybe_throw("site.d"));
  failpoint::disarm("site.d");
  EXPECT_NO_THROW(failpoint::maybe_throw("site.d"));  // would have been hit 2
  EXPECT_EQ(failpoint::hit_count("site.d"), 0u);
  failpoint::arm("site.d", "throw@2");
  EXPECT_NO_THROW(failpoint::maybe_throw("site.d"));  // counter restarted at 1
  EXPECT_THROW(failpoint::maybe_throw("site.d"), Error);
}

TEST_F(FailpointTest, ArmFromStringArmsEverySegment) {
  failpoint::arm_from_string("a.one=throw@1;b.two=throw@key=x;;c.three=short_write");
  EXPECT_THROW(failpoint::maybe_throw("a.one"), Error);
  EXPECT_NO_THROW(failpoint::maybe_throw("b.two", "y"));
  EXPECT_THROW(failpoint::maybe_throw("b.two", "x"), Error);
  const auto f = failpoint::hit("c.three");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->action, failpoint::Action::ShortWrite);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  EXPECT_THROW(failpoint::arm("s", ""), Error);
  EXPECT_THROW(failpoint::arm("s", "explode"), Error);
  EXPECT_THROW(failpoint::arm("s", "throw@"), Error);
  EXPECT_THROW(failpoint::arm("s", "throw@zero"), Error);
  EXPECT_THROW(failpoint::arm("s", "throw@0"), Error);  // hits are 1-based
  EXPECT_THROW(failpoint::arm_from_string("missing-equals"), Error);
  // Nothing half-armed after the failures above.
  EXPECT_NO_THROW(failpoint::maybe_throw("s"));
}

}  // namespace
