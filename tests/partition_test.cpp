// DAG partitioning for multi-chip scale-out (sim/partition): shard-rank
// selection, shard-DAG structure (ids/edges preserved, extents ceil-divided),
// edge classification against the shard boundary on the real workloads, the
// deterministic transfer list, and the NoC pricing + fold identities.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/partition.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/llm.hpp"

namespace {

using namespace cello;
using sim::ShardClass;

workloads::GnnShape gnn_shape() {
  workloads::GnnShape s;
  s.vertices = 2708;  // cora
  s.nnz = 10556;
  s.in_features = 1433;
  s.out_features = 16;
  return s;
}

workloads::CgShape cg_shape() {
  workloads::CgShape s;
  s.m = 9604;
  s.n = 16;
  s.nnz = 9604 * 7;
  s.iterations = 2;
  return s;
}

// ---- shard-rank selection ----------------------------------------------------

TEST(PickShardRank, PicksTheDominantUncontractedRank) {
  // GNN: m (vertices) is the only big uncontracted rank.
  EXPECT_EQ(sim::pick_shard_rank(workloads::build_gnn_dag(gnn_shape())), "m");
  // CG: m dominates n everywhere it appears uncontracted.
  EXPECT_EQ(sim::pick_shard_rank(workloads::build_cg_dag(cg_shape())), "m");
  // LLM decode: the MLP hidden width d_ff is the largest uncontracted rank.
  workloads::LlmShape llm;
  EXPECT_EQ(sim::pick_shard_rank(workloads::build_llm_decode_dag(llm)), "f");
}

// ---- shard DAG structure -----------------------------------------------------

TEST(BuildPartition, ShardKeepsIdsEdgesAndDividesExtents) {
  const ir::TensorDag dag = workloads::build_gnn_dag(gnn_shape());
  const sim::Partition part = sim::build_partition(dag, 4);
  EXPECT_EQ(part.nodes, 4);
  EXPECT_EQ(part.shard_rank, "m");
  ASSERT_EQ(part.shard.tensors().size(), dag.tensors().size());
  ASSERT_EQ(part.shard.ops().size(), dag.ops().size());
  ASSERT_EQ(part.shard.edges().size(), dag.edges().size());
  for (const auto& t : dag.tensors()) {
    const auto& st = part.shard.tensor(t.id);
    EXPECT_EQ(st.name, t.name);
    ASSERT_EQ(st.ranks.size(), t.ranks.size());
    for (size_t i = 0; i < t.ranks.size(); ++i) {
      EXPECT_EQ(st.ranks[i], t.ranks[i]) << t.name;
      if (t.ranks[i] == "m")
        EXPECT_EQ(st.dims[i], ceil_div<i64>(t.dims[i], 4)) << t.name;
      else
        EXPECT_EQ(st.dims[i], t.dims[i]) << t.name;
    }
  }
  // The adjacency is compressed and sharded on its row rank: nnz divides too.
  for (const auto& t : dag.tensors()) {
    if (t.storage == ir::Storage::CompressedSparse && !t.ranks.empty() && t.ranks[0] == "m")
      EXPECT_EQ(part.shard.tensor(t.id).nnz, ceil_div<i64>(t.nnz, 4)) << t.name;
  }
  // Op MAC counts shrink with the sharded rank.
  for (const auto& op : dag.ops())
    EXPECT_LE(part.shard.op(op.id).macs(), op.macs()) << op.name;
}

TEST(BuildPartition, IsDeterministic) {
  const ir::TensorDag dag = workloads::build_cg_dag(cg_shape());
  const sim::Partition a = sim::build_partition(dag, 8);
  const sim::Partition b = sim::build_partition(dag, 8);
  EXPECT_EQ(a.shard_rank, b.shard_rank);
  EXPECT_EQ(a.naive_bytes, b.naive_bytes);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].tensor, b.transfers[i].tensor);
    EXPECT_EQ(a.transfers[i].bytes, b.transfers[i].bytes);
    EXPECT_EQ(a.transfers[i].cls, b.transfers[i].cls);
  }
  EXPECT_EQ(a.tensor_class, b.tensor_class);
  // Transfers come in ascending tensor-id order — the pricing input is stable.
  for (size_t i = 1; i < a.transfers.size(); ++i)
    EXPECT_LT(a.transfers[i - 1].tensor, a.transfers[i].tensor);
}

// ---- edge classification -----------------------------------------------------

TEST(BuildPartition, GnnBroadcastsWeightsAndShipsNothingElse) {
  const ir::TensorDag dag = workloads::build_gnn_dag(gnn_shape());
  const sim::Partition part = sim::build_partition(dag, 4);
  size_t broadcasts = 0, reduces = 0;
  for (const auto& t : dag.tensors()) {
    const ShardClass cls = part.tensor_class[static_cast<size_t>(t.id)];
    if (cls == ShardClass::Broadcast) {
      ++broadcasts;
      // Only the m-free weight matrix crosses the fabric.
      EXPECT_FALSE(t.has_rank("m")) << t.name;
      EXPECT_EQ(t.name, "W");
    }
    if (cls == ShardClass::Reduce) ++reduces;
  }
  EXPECT_EQ(broadcasts, 1u);
  EXPECT_EQ(reduces, 0u);  // every GNN product keeps the vertex rank
  EXPECT_EQ(part.transfers.size(), 1u);
  // The naive split ships the sharded intermediates: strictly more traffic.
  Bytes score_bytes = 0;
  for (const auto& x : part.transfers) score_bytes += x.bytes;
  EXPECT_GT(part.naive_bytes, score_bytes);
}

TEST(BuildPartition, CgReducesContractedDominantPartials) {
  const ir::TensorDag dag = workloads::build_cg_dag(cg_shape());
  const sim::Partition part = sim::build_partition(dag, 4);
  size_t reduces = 0;
  for (const auto& t : dag.tensors()) {
    if (part.tensor_class[static_cast<size_t>(t.id)] != ShardClass::Reduce) continue;
    ++reduces;
    // Reductions are exactly the m-free products of m-contracting ops
    // (Delta and Gamma, every iteration).
    EXPECT_FALSE(t.has_rank("m")) << t.name;
    const auto prod = dag.producer(t.id);
    ASSERT_TRUE(prod.has_value()) << t.name;
    bool contracts_m = false;
    for (const auto& r : dag.op(*prod).ranks)
      if (r.contracted && r.name == "m") contracts_m = true;
    EXPECT_TRUE(contracts_m) << t.name;
  }
  EXPECT_GE(reduces, 2u * 2u);  // Delta and Gamma per iteration
}

TEST(BuildPartition, LlmKeepsKvCacheNodeLocal) {
  const ir::TensorDag dag = workloads::build_llm_decode_dag(workloads::LlmShape{});
  const sim::Partition part = sim::build_partition(dag, 4);
  // KV-cache chains never carry d_ff, and their appends must not cross the
  // fabric: they classify Local (replicated), not Reduce/Broadcast.
  for (const auto& t : dag.tensors()) {
    if (!t.append_only) continue;
    EXPECT_EQ(part.tensor_class[static_cast<size_t>(t.id)], ShardClass::Local) << t.name;
  }
}

// ---- error paths -------------------------------------------------------------

TEST(BuildPartition, RejectsMoreNodesThanShardExtent) {
  workloads::GnnShape tiny;
  tiny.vertices = 8;  // m dominates: the other ranks are smaller still
  tiny.nnz = 16;
  tiny.in_features = 4;
  tiny.out_features = 2;
  const ir::TensorDag dag = workloads::build_gnn_dag(tiny);
  ASSERT_EQ(sim::pick_shard_rank(dag), "m");
  EXPECT_NO_THROW(sim::build_partition(dag, 8));
  EXPECT_THROW(sim::build_partition(dag, 9), Error);
  EXPECT_THROW(sim::build_partition(dag, 0), Error);
}

TEST(BuildPartition, SingleNodeIsTheIdentity) {
  const ir::TensorDag dag = workloads::build_gnn_dag(gnn_shape());
  const sim::Partition part = sim::build_partition(dag, 1);
  EXPECT_TRUE(part.transfers.empty());
  EXPECT_EQ(part.naive_bytes, 0);
  for (const auto& t : dag.tensors()) {
    const auto& st = part.shard.tensor(t.id);
    ASSERT_EQ(st.dims.size(), t.dims.size());
    for (size_t i = 0; i < t.dims.size(); ++i) EXPECT_EQ(st.dims[i], t.dims[i]) << t.name;
  }
}

// ---- NoC pricing + fold ------------------------------------------------------

TEST(PriceNoc, TopologyDifferentiatesTheSameCollectives) {
  const ir::TensorDag dag = workloads::build_gnn_dag(gnn_shape());
  const sim::Partition part = sim::build_partition(dag, 16);
  const sim::AcceleratorConfig arch;
  const auto price = [&](const char* spec) {
    return sim::price_noc(part.transfers, noc::Topology::build(noc::TopologySpec::parse(spec)),
                          arch);
  };
  const sim::NocCost mesh = price("mesh:4x4");
  const sim::NocCost torus = price("torus:4x4");
  const sim::NocCost ring = price("ring:16");
  // Wraparound halves worst-case distance: torus strictly beats mesh on
  // byte-hops and no worse on the busiest link; the ring's long average
  // distance costs the most byte-hops of the three.
  EXPECT_LT(torus.byte_hops, mesh.byte_hops);
  EXPECT_LE(torus.max_link_bytes, mesh.max_link_bytes);
  EXPECT_GT(ring.byte_hops, mesh.byte_hops);
  EXPECT_GT(mesh.seconds, 0.0);
}

TEST(FoldMultinode, ScalesCountersAndAddsNocTerms) {
  const ir::TensorDag dag = workloads::build_gnn_dag(gnn_shape());
  const sim::Partition part = sim::build_partition(dag, 4);
  const noc::Topology topo = noc::Topology::build(noc::TopologySpec::parse("mesh:2x2"));
  sim::AcceleratorConfig arch;
  const sim::Simulator single(arch);
  const sim::Configuration& cello = sim::ConfigRegistry::global().at("Cello");
  const sim::RunMetrics base = single.run(dag, cello);
  const sim::RunMetrics per_node = single.run(part.shard, cello);
  const sim::RunMetrics mm = sim::fold_multinode(per_node, base.seconds, part, topo, arch);
  EXPECT_EQ(mm.nodes, 4);
  EXPECT_EQ(mm.total_macs, per_node.total_macs * 4);
  EXPECT_EQ(mm.dram_bytes, per_node.dram_bytes * 4);
  EXPECT_GT(mm.noc_bytes, 0);
  EXPECT_GT(mm.naive_noc_bytes, mm.noc_bytes / 3);  // same order; naive >> score on big M
  EXPECT_DOUBLE_EQ(mm.seconds, per_node.seconds + mm.noc_seconds);
  EXPECT_GT(mm.parallel_efficiency, 0.0);
  EXPECT_LE(mm.max_link_utilization, 1.0);

  // The arch-driven Simulator path is exactly this fold.
  sim::AcceleratorConfig multi = arch;
  multi.nodes = 4;
  multi.topology = "mesh:2x2";
  const sim::RunMetrics direct = sim::Simulator(multi).run(dag, cello);
  EXPECT_EQ(direct.nodes, mm.nodes);
  EXPECT_EQ(direct.noc_bytes, mm.noc_bytes);
  EXPECT_EQ(direct.dram_bytes, mm.dram_bytes);
  EXPECT_DOUBLE_EQ(direct.seconds, mm.seconds);
  EXPECT_DOUBLE_EQ(direct.parallel_efficiency, mm.parallel_efficiency);
}

}  // namespace
