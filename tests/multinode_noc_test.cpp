// Characterization tests for the multi-node dataflow model (sim/multinode)
// and the mesh NoC hop model (noc/mesh).  These pin the CURRENT analytic
// behavior — exact hop counts, traffic formulas, and the metric identities
// simulate_multinode derives — so refactors of either layer fail loudly.
// No behavior change is intended or tested for.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "sim/multinode.hpp"
#include "workloads/cg.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace cello;

// ---- noc::MeshNoc ------------------------------------------------------------

TEST(MeshNoc, SideIsCeilSqrtOfNodes) {
  noc::MeshNoc mesh;
  for (const auto& [nodes, side] : {std::pair<i64, i64>{1, 1},
                                    {2, 2},
                                    {4, 2},
                                    {5, 3},
                                    {9, 3},
                                    {16, 4},
                                    {17, 5},
                                    {64, 8}}) {
    mesh.nodes = nodes;
    EXPECT_EQ(mesh.side(), side) << "nodes=" << nodes;
  }
}

TEST(MeshNoc, TreeHopsAre2SideMinus1AndMirror) {
  noc::MeshNoc mesh;
  mesh.nodes = 1;
  EXPECT_EQ(mesh.broadcast_hops(), 0);  // single node: nothing crosses the NoC
  mesh.nodes = 16;
  EXPECT_EQ(mesh.broadcast_hops(), 2 * (4 - 1));
  EXPECT_EQ(mesh.reduce_hops(), mesh.broadcast_hops());  // reduction mirrors bcast
  // Hops grow monotonically with the mesh side.
  i64 prev = 0;
  for (i64 nodes : {1, 4, 9, 16, 25, 64}) {
    mesh.nodes = nodes;
    EXPECT_GE(mesh.broadcast_hops(), prev) << "nodes=" << nodes;
    prev = mesh.broadcast_hops();
  }
}

TEST(MeshNoc, CompareMultinodeCharacterizedFormulas) {
  // naive = M*N words; score = N*N' * (bcast + reduce) hops (Sec. V-B).
  noc::MeshNoc mesh;
  mesh.nodes = 16;
  const auto t = noc::compare_multinode(100000, 16, 8, mesh);
  EXPECT_DOUBLE_EQ(t.naive_words, 100000.0 * 16.0);
  EXPECT_DOUBLE_EQ(t.score_words, 16.0 * 8.0 * (6 + 6));
  EXPECT_DOUBLE_EQ(t.ratio(), t.naive_words / t.score_words);
  // Degenerate guard: zero score traffic reports ratio 0, not a division.
  mesh.nodes = 1;
  EXPECT_DOUBLE_EQ(noc::compare_multinode(100, 4, 4, mesh).ratio(), 0.0);
}

// ---- sim::simulate_multinode -------------------------------------------------

ir::TensorDag cg_shard(i64 nodes) {
  workloads::CgShape s{81920 / nodes, 16, 327680 / nodes, 3, 4};
  return workloads::build_cg_dag(s);
}

TEST(MultiNodeSmoke, SingleNodeHasNoNocTerms) {
  const auto mm =
      sim::simulate_multinode(cg_shard, sim::ConfigKind::Cello, sim::AcceleratorConfig{}, 1);
  EXPECT_EQ(mm.nodes, 1);
  EXPECT_EQ(mm.noc_bytes, 0u);
  EXPECT_EQ(mm.naive_noc_bytes, 0u);
  EXPECT_DOUBLE_EQ(mm.noc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(mm.seconds, mm.per_node.seconds);
  EXPECT_NEAR(mm.parallel_efficiency, 1.0, 1e-9);
}

TEST(MultiNodeSmoke, MetricIdentitiesHold) {
  const double bw = 256e9;
  const auto mm = sim::simulate_multinode(cg_shard, sim::ConfigKind::Cello,
                                          sim::AcceleratorConfig{}, 4, bw);
  EXPECT_EQ(mm.nodes, 4);
  EXPECT_GT(mm.noc_bytes, 0u);                     // contracted results do cross
  EXPECT_GT(mm.naive_noc_bytes, mm.noc_bytes);     // skewed tensors dwarf them
  // Transfers are routed hop-by-hop on an auto-shaped mesh (here 2x2), so
  // noc_seconds carries a tree-depth latency term on top of serializing the
  // busiest link — strictly more than shipping the byte-hops at full bw.
  EXPECT_GT(mm.noc_seconds, 0.0);
  EXPECT_GT(mm.noc_seconds, static_cast<double>(mm.noc_bytes) / bw / 4.0);
  EXPECT_DOUBLE_EQ(mm.seconds, mm.per_node.seconds + mm.noc_seconds);
  const double total_macs = static_cast<double>(mm.per_node.total_macs) * 4.0;
  EXPECT_DOUBLE_EQ(mm.total_gmacs_per_sec, total_macs / mm.seconds / 1e9);
}

TEST(MultiNodeSmoke, Deterministic) {
  const auto a =
      sim::simulate_multinode(cg_shard, sim::ConfigKind::Cello, sim::AcceleratorConfig{}, 4);
  const auto b =
      sim::simulate_multinode(cg_shard, sim::ConfigKind::Cello, sim::AcceleratorConfig{}, 4);
  EXPECT_EQ(a.noc_bytes, b.noc_bytes);
  EXPECT_EQ(a.naive_noc_bytes, b.naive_noc_bytes);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.parallel_efficiency, b.parallel_efficiency);
}

TEST(MultiNodeSmoke, WorksAcrossConfigKinds) {
  // The NoC terms depend only on the shard DAG, not the schedule/buffer
  // policy: Flexagon and Cello agree on traffic, differ on time.
  auto builder = [](i64 nodes) {
    return workloads::build_spmv_dag({65536 / nodes, 524288 / nodes, 4, 3, 4});
  };
  sim::AcceleratorConfig arch;
  const auto flex = sim::simulate_multinode(builder, sim::ConfigKind::Flexagon, arch, 4);
  const auto cello = sim::simulate_multinode(builder, sim::ConfigKind::Cello, arch, 4);
  EXPECT_EQ(flex.noc_bytes, cello.noc_bytes);
  EXPECT_EQ(flex.naive_noc_bytes, cello.naive_noc_bytes);
  EXPECT_GT(flex.per_node.seconds, 0.0);
  EXPECT_GT(cello.per_node.seconds, 0.0);
}

}  // namespace
