// Tests for crash-safe sweep checkpointing (sim/checkpoint) and the
// fault-tolerance knobs of SweepRunner (SweepOptions): journal round-trips,
// kill-and-resume byte-identity, torn/short/truncated journal recovery,
// bounded retries, keep-going quarantine, and cell-naming error context.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cello/cello.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "sim/checkpoint.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::CheckpointState;
using sim::ShardPlan;
using sim::ShardResult;
using sim::SweepGrid;
using sim::SweepOptions;
using sim::SweepResult;
using sim::SweepRunner;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

u64 bits(double v) { return std::bit_cast<u64>(v); }

void expect_cell_bit_equal(const SweepResult& a, const SweepResult& b, const std::string& ctx) {
  EXPECT_EQ(a.workload, b.workload) << ctx;
  EXPECT_EQ(a.config, b.config) << ctx;
  EXPECT_EQ(a.error, b.error) << ctx;
  EXPECT_EQ(bits(a.metrics.seconds), bits(b.metrics.seconds)) << ctx;
  EXPECT_EQ(a.metrics.dram_bytes, b.metrics.dram_bytes) << ctx;
  EXPECT_EQ(bits(a.metrics.onchip_energy_pj), bits(b.metrics.onchip_energy_pj)) << ctx;
  EXPECT_EQ(a.metrics.sram_line_accesses, b.metrics.sram_line_accesses) << ctx;
}

/// A cheap shape-only 2x3 grid (no datasets to download, ~ms per cell).
SweepGrid test_grid() {
  const AcceleratorConfig arch;
  return sim::make_grid({"cg:m=9604,nnz=85264,n=16,iters=3", "llm:seq=512,decode_steps=4"},
                        {"Flexagon", "Cello", "Flex+LRU"}, arch);
}

/// Fresh journal path per test; failpoints never leak between tests.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("/tmp/cello_ckpt_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".journal";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    failpoint::disarm_all();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(CheckpointTest, HeaderBindsGridShardAndMode) {
  const auto grid = test_grid();
  const auto p11 = sim::plan_shard(grid, 1, 1);
  const auto p12 = sim::plan_shard(grid, 1, 2);
  const auto p22 = sim::plan_shard(grid, 2, 2);
  EXPECT_NE(sim::checkpoint_header(grid, p11), sim::checkpoint_header(grid, p12));
  EXPECT_NE(sim::checkpoint_header(grid, p12), sim::checkpoint_header(grid, p22));

  // A journal written for one shard refuses to load for another.
  const std::string bytes = sim::checkpoint_header(grid, p12);
  EXPECT_NO_THROW(sim::read_journal(bytes, grid, p12));
  EXPECT_THROW(sim::read_journal(bytes, grid, p22), Error);
  EXPECT_THROW(sim::read_journal("garbage\n", grid, p12), Error);
  EXPECT_THROW(sim::read_journal("", grid, p12), Error);
}

TEST_F(CheckpointTest, FreshRunJournalsEveryCellBitExactly) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  SweepOptions opts;
  opts.checkpoint = path_;
  const auto cells = SweepRunner(2).run_shard(grid, plan, opts);
  ASSERT_EQ(cells.size(), grid.cells());

  const CheckpointState state = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_EQ(state.dropped_bytes, 0u);
  ASSERT_EQ(state.completed.size(), grid.cells());
  for (const auto& [cell, result] : state.completed)
    expect_cell_bit_equal(result, cells[cell], "journal cell " + std::to_string(cell));
}

TEST_F(CheckpointTest, CrashMidSweepThenResumeIsByteIdentical) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);  // uninterrupted, no journal
  const std::string reference_json = sim::shard_to_json({grid, plan, reference});

  // "Crash" when cell 4 runs: the injected throw aborts the sweep, but every
  // cell journaled before the abort survives.
  failpoint::arm("sweep.cell", "throw@key=4");
  SweepOptions opts;
  opts.checkpoint = path_;
  EXPECT_THROW(SweepRunner(2).run_shard(grid, plan, opts), Error);
  failpoint::disarm_all();

  // Resume: completed cells come back from the journal, the rest re-run.
  opts.resume = true;
  const auto resumed = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, resumed}), reference_json);

  // The resumed journal is complete and clean.
  const CheckpointState state = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_EQ(state.dropped_bytes, 0u);
  EXPECT_EQ(state.completed.size(), grid.cells());
}

TEST_F(CheckpointTest, ExistingJournalWithoutResumeRefuses) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  SweepOptions opts;
  opts.checkpoint = path_;
  SweepRunner(1).run_shard(grid, plan, opts);
  try {
    SweepRunner(1).run_shard(grid, plan, opts);
    FAIL() << "expected refusal to clobber an existing journal";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointTest, ResumeWithMissingJournalStartsFresh) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);
  SweepOptions opts;
  opts.checkpoint = path_;
  opts.resume = true;  // nothing to resume from: must behave like a fresh run
  const auto cells = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, cells}),
            sim::shard_to_json({grid, plan, reference}));
}

TEST_F(CheckpointTest, TruncatedTailIsDroppedAndRecomputed) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);
  SweepOptions opts;
  opts.checkpoint = path_;
  SweepRunner(1).run_shard(grid, plan, opts);

  // SIGKILL mid-append: the file ends inside the last record.
  const std::string full = read_file(path_);
  write_file(path_, full.substr(0, full.size() - 7));

  const CheckpointState cut = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_GT(cut.dropped_bytes, 0u);
  EXPECT_EQ(cut.completed.size(), grid.cells() - 1);

  opts.resume = true;
  const auto resumed = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, resumed}),
            sim::shard_to_json({grid, plan, reference}));
  // Resume truncated the torn tail and re-appended the lost cell.
  const CheckpointState healed = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_EQ(healed.dropped_bytes, 0u);
  EXPECT_EQ(healed.completed.size(), grid.cells());
}

TEST_F(CheckpointTest, TornAppendFailsChecksumAndResumes) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);

  // The append for cell 2 writes a full-length record with one garbled
  // payload byte, then "crashes": framing parses, the checksum must not.
  failpoint::arm("checkpoint.append", "torn_write@key=2");
  SweepOptions opts;
  opts.checkpoint = path_;
  EXPECT_THROW(SweepRunner(1).run_shard(grid, plan, opts), Error);
  failpoint::disarm_all();

  const CheckpointState torn = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_GT(torn.dropped_bytes, 0u);
  for (const auto& [cell, result] : torn.completed) EXPECT_NE(cell, 2u) << result.config;

  opts.resume = true;
  const auto resumed = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, resumed}),
            sim::shard_to_json({grid, plan, reference}));
}

TEST_F(CheckpointTest, ShortAppendLeavesRecoverableJournal) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);

  failpoint::arm("checkpoint.append", "short_write@key=1");
  SweepOptions opts;
  opts.checkpoint = path_;
  EXPECT_THROW(SweepRunner(1).run_shard(grid, plan, opts), Error);
  failpoint::disarm_all();

  const CheckpointState cut = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_GT(cut.dropped_bytes, 0u);

  opts.resume = true;
  const auto resumed = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, resumed}),
            sim::shard_to_json({grid, plan, reference}));
}

TEST_F(CheckpointTest, BoundedRetriesSurviveTransientFaults) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);

  // The first simulated cell faults once; with one retry the sweep heals and
  // stays bit-identical to a clean run.
  failpoint::arm("sweep.cell", "throw@1");
  SweepOptions opts;
  opts.retries = 1;
  const auto cells = SweepRunner(1).run_shard(grid, plan, opts);
  ASSERT_EQ(cells.size(), reference.size());
  for (size_t i = 0; i < cells.size(); ++i)
    expect_cell_bit_equal(cells[i], reference[i], "cell " + std::to_string(i));
}

TEST_F(CheckpointTest, KeepGoingQuarantinesAndNamesTheFailingCell) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);

  failpoint::arm("sweep.cell", "throw@key=2");
  SweepOptions opts;
  opts.keep_going = true;
  opts.retries = 1;  // both attempts hit the key trigger: persistent fault
  const auto cells = SweepRunner(2).run_shard(grid, plan, opts);
  ASSERT_EQ(cells.size(), grid.cells());

  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(cells[i].ok()) << cells[i].error;
    expect_cell_bit_equal(cells[i], reference[i], "cell " + std::to_string(i));
  }
  const SweepResult& bad = cells[2];
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("sweep cell 2"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find(grid.workloads[0]), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find(grid.configs[2]), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("after 2 attempts"), std::string::npos) << bad.error;
  EXPECT_EQ(bad.metrics.dram_bytes, 0u);
  EXPECT_EQ(bits(bad.metrics.seconds), bits(0.0));
}

TEST_F(CheckpointTest, QuarantinedFailuresAreNotJournaledSoResumeRetriesThem) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  const auto reference = SweepRunner(1).run_shard(grid, plan);

  failpoint::arm("sweep.cell", "throw@key=3");
  SweepOptions opts;
  opts.keep_going = true;
  opts.checkpoint = path_;
  const auto quarantined = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_FALSE(quarantined[3].ok());
  failpoint::disarm_all();

  // The journal holds only the successes; resuming after the fault is fixed
  // re-runs cell 3 and lands byte-identical to an uninterrupted clean run.
  const CheckpointState state = sim::read_journal(read_file(path_), grid, plan);
  EXPECT_EQ(state.completed.size(), grid.cells() - 1);
  for (const auto& [cell, result] : state.completed) EXPECT_NE(cell, 3u) << result.config;

  opts.resume = true;
  const auto resumed = SweepRunner(2).run_shard(grid, plan, opts);
  EXPECT_EQ(sim::shard_to_json({grid, plan, resumed}),
            sim::shard_to_json({grid, plan, reference}));
}

TEST_F(CheckpointTest, AbortingErrorNamesTheCell) {
  const auto grid = test_grid();
  const auto plan = sim::plan_shard(grid, 1, 1);
  failpoint::arm("sweep.cell", "throw@key=5");
  try {
    SweepRunner(2).run_shard(grid, plan, SweepOptions{});
    FAIL() << "expected the injected fault to abort the sweep";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep cell 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find(grid.workloads[1]), std::string::npos) << msg;  // 5 / 3 = workload 1
    EXPECT_NE(msg.find(grid.configs[2]), std::string::npos) << msg;    // 5 % 3 = config 2
    EXPECT_NE(msg.find("injected fault"), std::string::npos) << msg;
  }
}

TEST_F(CheckpointTest, PlainRunErrorsAlsoNameTheCell) {
  // The non-shard entry point wraps cell failures with the same coordinates.
  failpoint::arm("sweep.cell", "throw@key=1");
  const std::vector<std::string> spec_texts = {"cg:m=9604,nnz=85264,n=16,iters=3"};
  const std::vector<std::string> config_names = {"Flexagon", "Cello"};
  try {
    SweepRunner(1).run(spec_texts, config_names, AcceleratorConfig{});
    FAIL() << "expected the injected fault to abort the sweep";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sweep cell 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Cello"), std::string::npos) << msg;
  }
}

TEST_F(CheckpointTest, CheckpointRequiresShardScopedRun) {
  SweepOptions opts;
  opts.checkpoint = path_;
  EXPECT_THROW(SweepRunner(1).run(std::vector<sim::Workload>{},
                                  std::vector<sim::Configuration>{}, AcceleratorConfig{},
                                  opts),
               Error);
}

}  // namespace
