// Tests for the composable policy API: Configuration, ConfigRegistry,
// Simulator — name round-trips, bit-identical parity between the registry
// presets and the legacy ConfigKind path, and novel policy combinations the
// enum could not express.
#include <gtest/gtest.h>

#include <algorithm>

#include "cello/cello.hpp"
#include "common/error.hpp"
#include "sim/policies/cache_policy.hpp"
#include "sim/policies/chord_policy.hpp"
#include "sim/policies/explicit_buffers.hpp"
#include "sparse/datasets.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigKind;
using sim::ConfigRegistry;
using sim::Configuration;
using sim::RunMetrics;
using sim::SchedulePolicy;
using sim::Simulator;

void expect_bit_identical(const RunMetrics& a, const RunMetrics& b, const std::string& label) {
  EXPECT_EQ(a.seconds, b.seconds) << label;
  EXPECT_EQ(a.total_macs, b.total_macs) << label;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << label;
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes) << label;
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes) << label;
  EXPECT_EQ(a.offchip_energy_pj, b.offchip_energy_pj) << label;
  EXPECT_EQ(a.onchip_energy_pj, b.onchip_energy_pj) << label;
  EXPECT_EQ(a.sram_line_accesses, b.sram_line_accesses) << label;
  ASSERT_EQ(a.per_op.size(), b.per_op.size()) << label;
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    EXPECT_EQ(a.per_op[i].dram_bytes, b.per_op[i].dram_bytes) << label << " op " << i;
    EXPECT_EQ(a.per_op[i].macs, b.per_op[i].macs) << label << " op " << i;
  }
  EXPECT_EQ(a.traffic_by_tensor, b.traffic_by_tensor) << label;
}

TEST(Registry, EnumNamesRoundTripThroughRegistry) {
  const auto& registry = ConfigRegistry::global();
  for (ConfigKind kind : all_configs()) {
    const std::string name = sim::to_string(kind);
    const Configuration* c = registry.find(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->name, name);
    EXPECT_EQ(ConfigRegistry::preset(kind).name, name);
  }
}

TEST(Registry, LookupIsNormalized) {
  const auto& registry = ConfigRegistry::global();
  EXPECT_NE(registry.find("cello"), nullptr);
  EXPECT_NE(registry.find("FLEXAGON"), nullptr);
  EXPECT_NE(registry.find("flex+lru"), nullptr);
  EXPECT_NE(registry.find("flexlru"), nullptr);
  EXPECT_NE(registry.find("prelude-only"), nullptr);
  EXPECT_EQ(registry.find("no-such-config"), nullptr);
  EXPECT_THROW(registry.at("no-such-config"), Error);
}

TEST(Registry, ScoreChordAliasResolvesToCello) {
  const auto& registry = ConfigRegistry::global();
  const Configuration* alias = registry.find("score+chord");
  ASSERT_NE(alias, nullptr);
  EXPECT_EQ(alias, registry.find("Cello"));
  // Aliases are lookup-only: names() still lists each configuration once.
  const auto names = registry.names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "Cello"), 1);
  EXPECT_EQ(std::count(names.begin(), names.end(), "SCORE+CHORD"), 0);
}

TEST(Registry, Table4NamesComeFirstInPaperOrder) {
  const auto names = ConfigRegistry::global().names();
  const auto& table4 = ConfigRegistry::table4_names();
  ASSERT_GE(names.size(), table4.size());
  for (size_t i = 0; i < table4.size(); ++i) EXPECT_EQ(names[i], table4[i]);
  EXPECT_EQ(table4.front(), "Flexagon");
  EXPECT_EQ(table4.back(), "Cello");
}

TEST(Registry, RejectsDuplicatesAndMissingFactories) {
  ConfigRegistry registry;  // fresh, preset-populated
  EXPECT_THROW(registry.add(ConfigRegistry::preset(ConfigKind::Cello)), Error);
  Configuration no_factory;
  no_factory.name = "broken";
  EXPECT_THROW(registry.add(no_factory), Error);
}

TEST(Registry, PresetsReproduceLegacyEnumPathBitIdentical) {
  // The registry-built presets must be indistinguishable from the ConfigKind
  // path for every Table IV row, on both an iterative solver DAG and a GNN.
  const auto cg = workloads::build_cg_dag({81920, 16, 327680, 5, 4});
  const auto gnn = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto& registry = ConfigRegistry::global();
  for (ConfigKind kind : all_configs()) {
    const std::string name = sim::to_string(kind);
    for (const auto* dag : {&cg, &gnn}) {
      const auto legacy = sim::simulate(*dag, kind, arch);
      const auto composed = simulator.run(*dag, registry.at(name));
      expect_bit_identical(legacy, composed, name);
    }
  }
}

TEST(Registry, PresetParityHoldsWithRealMatrixTrace) {
  // The trace-driven cache presets consume the real sparse structure.
  const auto spec = sparse::dataset_by_name("fv1");
  const auto matrix = sparse::instantiate(spec);
  const auto dag = workloads::build_cg_dag({spec.rows, 16, matrix.nnz(), 3, 4});
  const AcceleratorConfig arch;
  const Simulator simulator(arch, &matrix);
  for (ConfigKind kind : {ConfigKind::FlexLru, ConfigKind::FlexBrrip, ConfigKind::Cello}) {
    const auto legacy = sim::simulate(dag, kind, arch, &matrix);
    const auto composed = simulator.run(dag, ConfigRegistry::global().at(sim::to_string(kind)));
    expect_bit_identical(legacy, composed, sim::to_string(kind));
  }
}

TEST(NovelCombos, ScoreWithLruRunsEndToEnd) {
  // SCORE scheduling over an implicit LRU cache — inexpressible under the
  // old enum.  Pipelined edges bypass the cache, so traffic can only drop
  // relative to the op-by-op cache baseline.
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto score_lru = simulator.run(dag, ConfigRegistry::global().at("SCORE+LRU"));
  const auto flex_lru = simulator.run(dag, ConfigRegistry::preset(ConfigKind::FlexLru));
  EXPECT_GT(score_lru.total_macs, 0);
  EXPECT_GT(score_lru.seconds, 0.0);
  EXPECT_GT(score_lru.dram_bytes, 0u);
  EXPECT_LE(score_lru.dram_bytes, flex_lru.dram_bytes);
}

TEST(NovelCombos, FlatWithChordRunsEndToEnd) {
  // Adjacent pipelining over a CHORD buffer: pipelined feature maps stay in
  // the pipeline buffer, everything else enjoys CHORD reuse — so it cannot
  // move more bytes than the op-by-op PRELUDE/CHORD hierarchy alone.
  const auto dag = workloads::build_cg_dag({81920, 16, 327680, 5, 4});
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto flat_chord = simulator.run(dag, ConfigRegistry::global().at("FLAT+CHORD"));
  const auto flexagon = simulator.run(dag, ConfigRegistry::preset(ConfigKind::Flexagon));
  EXPECT_GT(flat_chord.dram_bytes, 0u);
  EXPECT_LT(flat_chord.dram_bytes, flexagon.dram_bytes);
  EXPECT_EQ(flat_chord.dram_bytes, flat_chord.dram_read_bytes + flat_chord.dram_write_bytes);
}

TEST(NovelCombos, UserDefinedConfigurationViaMakeConfiguration) {
  const auto dag = workloads::build_gnn_dag({1000, 5000, 64, 16});
  const AcceleratorConfig arch;
  const auto mine = sim::make_configuration("mine", SchedulePolicy::Score, sim::brrip_cache(),
                                            "BRRIP", /*allow_delayed_hold=*/true);
  const auto m = Simulator(arch).run(dag, mine);
  EXPECT_GT(m.total_macs, 0);
  EXPECT_GT(m.dram_bytes, 0u);
}

TEST(NovelCombos, UserRegistrationIsLookupable) {
  ConfigRegistry registry;
  registry.add(sim::make_configuration("My-Combo", SchedulePolicy::AdjacentPipeline,
                                       sim::prelude_only(), "PRELUDE"));
  ASSERT_NE(registry.find("my-combo"), nullptr);
  EXPECT_EQ(registry.find("MY COMBO"), registry.find("My-Combo"));
}

TEST(ConfigurationKnobs, PipelineStyleOverrideChangesTimingOnly) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  AcceleratorConfig arch;
  arch.dram_bytes_per_sec = 250e9;
  Configuration sequential = ConfigRegistry::preset(ConfigKind::Cello);
  sequential.name = "Cello-SP";
  sequential.pipeline_style = sim::PipelineStyle::Sequential;
  const Simulator simulator(arch);
  const auto pp = simulator.run(dag, ConfigRegistry::preset(ConfigKind::Cello));
  const auto sp = simulator.run(dag, sequential);
  EXPECT_EQ(pp.dram_bytes, sp.dram_bytes);
  EXPECT_LT(pp.seconds, sp.seconds);
}

TEST(ConfigurationKnobs, HoldBudgetOverrideDemotesHolds) {
  const auto dag = workloads::build_resnet_block_dag({});
  const AcceleratorConfig arch;
  Configuration tight = ConfigRegistry::preset(ConfigKind::Cello);
  tight.name = "Cello-tight-hold";
  tight.hold_budget_bytes = 64 * 1024;  // cannot hold the 784 KiB skip tensor
  const Simulator simulator(arch);
  const auto roomy_m = simulator.run(dag, ConfigRegistry::preset(ConfigKind::Cello));
  const auto tight_m = simulator.run(dag, tight);
  EXPECT_GT(tight_m.dram_bytes, 0u);
  EXPECT_LE(roomy_m.dram_bytes, tight_m.dram_bytes);
  // The override must behave exactly like setting the knob on the arch.
  AcceleratorConfig tight_arch = arch;
  tight_arch.hold_budget_bytes = 64 * 1024;
  const auto via_arch = Simulator(tight_arch).run(dag, ConfigRegistry::preset(ConfigKind::Cello));
  EXPECT_EQ(tight_m.dram_bytes, via_arch.dram_bytes);
  EXPECT_EQ(tight_m.seconds, via_arch.seconds);
}

TEST(Simulator, UnknownNameThrowsWithListing) {
  EXPECT_THROW(ConfigRegistry::global().at("definitely-not-registered"), Error);
}

}  // namespace
