// Tests for the extension workloads (multi-layer GCN, ResNet stacks, power
// iteration) and the multi-node simulation model.
#include <gtest/gtest.h>

#include "score/dependency.hpp"
#include "sim/multinode.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/poweriter.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using score::DepKind;
using sim::ConfigKind;

TEST(GnnMultilayer, Structure) {
  const auto dag = workloads::build_gnn_multilayer_dag({2708, 9464, 1433, 7}, 3, 64);
  EXPECT_EQ(dag.ops().size(), 6u);  // aggregate+transform per layer
  dag.validate();
  int results = 0;
  for (const auto& t : dag.tensors())
    if (t.is_result) ++results;
  EXPECT_EQ(results, 1);
}

TEST(GnnMultilayer, AdjacencyReusedEveryLayer) {
  const auto dag = workloads::build_gnn_multilayer_dag({2708, 9464, 1433, 7}, 3, 64);
  ir::TensorId a = ir::kInvalidTensor;
  for (const auto& t : dag.tensors())
    if (t.name == "A_hat") a = t.id;
  ASSERT_NE(a, ir::kInvalidTensor);
  EXPECT_EQ(dag.consumers(a).size(), 3u);
}

TEST(GnnMultilayer, IntraLayerEdgesPipeline) {
  const auto dag = workloads::build_gnn_multilayer_dag({2708, 9464, 1433, 7}, 2, 64);
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  for (const auto& e : dag.edges()) {
    const auto& src = dag.op(e.src).name;
    if (src.starts_with("aggregate")) {
      EXPECT_EQ(cls.edge_kind[e.id], DepKind::Pipelineable) << src;
    }
  }
}

TEST(GnnMultilayer, CelloBenefitsFromAdjacencyReuse) {
  // Unlike the single layer (Cello == FLAT), multiple layers re-read A_hat;
  // CHORD keeps it on chip, so Cello strictly beats FLAT.
  const auto dag = workloads::build_gnn_multilayer_dag({2708, 9464, 1433, 7}, 3, 64);
  sim::AcceleratorConfig arch;
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  const auto cello_m = sim::simulate(dag, ConfigKind::Cello, arch);
  EXPECT_LT(cello_m.dram_bytes, flat.dram_bytes);
}

TEST(ResNetStack, Structure) {
  const auto dag = workloads::build_resnet_stack_dag({}, 4);
  EXPECT_EQ(dag.ops().size(), 1u + 4u * 4u);  // stem + 4 ops per block
  dag.validate();
}

TEST(ResNetStack, EverySkipIsDelayedHold) {
  const auto dag = workloads::build_resnet_stack_dag({}, 3);
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  int holds = 0;
  for (const auto& e : dag.edges())
    if (cls.edge_kind[e.id] == DepKind::DelayedHold) ++holds;
  EXPECT_EQ(holds, 3);  // one per block
}

TEST(ResNetStack, SetStillMatchesCello) {
  const auto dag = workloads::build_resnet_stack_dag({}, 4);
  sim::AcceleratorConfig arch;
  arch.dram_bytes_per_sec = 250e9;
  const auto set = sim::simulate(dag, ConfigKind::Set, arch);
  const auto cello_m = sim::simulate(dag, ConfigKind::Cello, arch);
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  EXPECT_EQ(set.dram_bytes, cello_m.dram_bytes);
  EXPECT_GT(flat.dram_bytes, set.dram_bytes);
}

TEST(PowerIteration, Structure) {
  const auto dag = workloads::build_power_iteration_dag({81920, 327680, 10, 4});
  EXPECT_EQ(dag.ops().size(), 30u);
  dag.validate();
}

TEST(PowerIteration, YHasDelayedWritebackToScale) {
  const auto dag = workloads::build_power_iteration_dag({81920, 327680, 3, 4});
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  int writebacks = 0, pipes = 0;
  for (const auto& e : dag.edges()) {
    const auto& src = dag.op(e.src).name;
    const auto& dst = dag.op(e.dst).name;
    if (src.starts_with("spmv") && dst.starts_with("norm")) {
      EXPECT_EQ(cls.edge_kind[e.id], DepKind::Pipelineable);
      ++pipes;
    }
    if (src.starts_with("spmv") && dst.starts_with("scale")) {
      EXPECT_EQ(cls.edge_kind[e.id], DepKind::DelayedWriteback);
      ++writebacks;
    }
  }
  EXPECT_EQ(pipes, 3);
  EXPECT_EQ(writebacks, 3);
}

TEST(PowerIteration, CelloWins) {
  const auto dag = workloads::build_power_iteration_dag({81920, 327680, 10, 4});
  sim::AcceleratorConfig arch;
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, arch);
  const auto cello_m = sim::simulate(dag, ConfigKind::Cello, arch);
  EXPECT_LT(cello_m.dram_bytes, flex.dram_bytes);
}

// ---- multi-node --------------------------------------------------------------

TEST(MultiNode, OneNodeIsIdentity) {
  auto builder = [](i64 nodes) {
    workloads::CgShape s{81920 / nodes, 16, 327680 / nodes, 5, 4};
    return workloads::build_cg_dag(s);
  };
  const auto mm =
      sim::simulate_multinode(builder, ConfigKind::Cello, sim::AcceleratorConfig{}, 1);
  EXPECT_EQ(mm.noc_bytes, 0u);
  EXPECT_NEAR(mm.parallel_efficiency, 1.0, 1e-9);
}

TEST(MultiNode, ThroughputGrowsWithNodes) {
  auto builder = [](i64 nodes) {
    workloads::CgShape s{163840 / nodes, 16, 655360 / nodes, 5, 4};
    return workloads::build_cg_dag(s);
  };
  sim::AcceleratorConfig arch;
  const auto one = sim::simulate_multinode(builder, ConfigKind::Cello, arch, 1);
  const auto four = sim::simulate_multinode(builder, ConfigKind::Cello, arch, 4);
  EXPECT_GT(four.total_gmacs_per_sec, one.total_gmacs_per_sec);
  // Sharding can be super-linear (each node's working set shrinks relative to
  // its fixed 4 MiB CHORD — the classic cache effect), but bounded sanity:
  EXPECT_LE(four.parallel_efficiency, 4.0);
  EXPECT_GT(four.parallel_efficiency, 0.3);
}

TEST(MultiNode, ScoreNocTrafficTinyVsNaive) {
  auto builder = [](i64 nodes) {
    workloads::CgShape s{163840 / nodes, 16, 655360 / nodes, 5, 4};
    return workloads::build_cg_dag(s);
  };
  const auto mm =
      sim::simulate_multinode(builder, ConfigKind::Cello, sim::AcceleratorConfig{}, 16);
  EXPECT_LT(mm.noc_bytes * 100, mm.naive_noc_bytes);
}

}  // namespace
