// End-to-end smoke: build CG, schedule with SCORE, run all configurations.
#include <gtest/gtest.h>

#include "cello/cello.hpp"

namespace {

TEST(Smoke, CgRunsAllConfigs) {
  cello::workloads::CgShape shape;
  shape.m = 9604;
  shape.n = 16;
  shape.nnz = 85264;
  shape.iterations = 3;
  const auto dag = cello::workloads::build_cg_dag(shape);
  cello::sim::AcceleratorConfig arch;
  const auto results = cello::run_all(dag, arch);
  ASSERT_EQ(results.size(), 7u);
  for (const auto& [name, m] : results) {
    EXPECT_GT(m.seconds, 0.0) << name;
    EXPECT_GT(m.total_macs, 0) << name;
  }
}

}  // namespace
