// Topology-scripted NoC model (noc/topology): spec parse/print round-trips,
// the explicit error paths, and the routing-table properties every fabric
// must satisfy — all-pairs reachability, shortest-hop distances, the
// dimension-ordered (XY) tie-break that keeps mesh routing deadlock-free,
// and per-link byte accounting under route().
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "noc/topology.hpp"

namespace {

using namespace cello;
using noc::TopoKind;
using noc::Topology;
using noc::TopologySpec;

// ---- spec parse / print ------------------------------------------------------

TEST(TopologySpec, ParsePrintRoundTrips) {
  for (const char* text : {"1", "mesh:2x2", "mesh:3x4", "torus:2x8", "torus:8x8", "ring:2",
                           "ring:16", "crossbar:8"}) {
    const TopologySpec spec = TopologySpec::parse(text);
    EXPECT_EQ(spec.to_string(), text) << text;
    EXPECT_EQ(TopologySpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(TopologySpec, CanonicalizesCountsAndAliases) {
  // A bare count auto-factors into the squarest rows x cols grid.
  EXPECT_EQ(TopologySpec::parse("mesh:12").to_string(), "mesh:3x4");
  EXPECT_EQ(TopologySpec::parse("mesh:16").to_string(), "mesh:4x4");
  EXPECT_EQ(TopologySpec::parse("torus:6").to_string(), "torus:2x3");
  EXPECT_EQ(TopologySpec::parse("mesh:7").to_string(), "mesh:1x7");  // prime: 1xN
  EXPECT_EQ(TopologySpec::parse("single").to_string(), "1");
}

TEST(TopologySpec, NodeCounts) {
  EXPECT_EQ(TopologySpec::parse("1").nodes(), 1);
  EXPECT_EQ(TopologySpec::parse("mesh:3x4").nodes(), 12);
  EXPECT_EQ(TopologySpec::parse("ring:16").nodes(), 16);
  EXPECT_EQ(TopologySpec::parse("crossbar:8").nodes(), 8);
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "mesh", "torus", "ring", "crossbar",  // bare kinds need a count
                          "hypercube:8", "mesh:0x4", "mesh:4x0", "mesh:4x", "mesh:x4",
                          "mesh:4x4x4", "ring:1", "crossbar:1", "ring:2x3", "crossbar:2x2",
                          "mesh:abc", "mesh:-4", "mesh:4.5", "1:2", "mesh:2000000"}) {
    EXPECT_THROW(TopologySpec::parse(bad), Error) << "'" << bad << "'";
  }
}

TEST(TopologySpec, ResolveAutoShapesBareKindsAndChecksExplicitOnes) {
  EXPECT_EQ(noc::resolve_topology("mesh", 12).to_string(), "mesh:3x4");
  EXPECT_EQ(noc::resolve_topology("torus", 16).to_string(), "torus:4x4");
  EXPECT_EQ(noc::resolve_topology("ring", 5).to_string(), "ring:5");
  EXPECT_EQ(noc::resolve_topology("mesh:2x8", 16).to_string(), "mesh:2x8");
  // One chip is fabric-less whatever the kind says.
  EXPECT_EQ(noc::resolve_topology("mesh", 1).to_string(), "1");
  // An explicit shape that contradicts the node count is an error, never a
  // silent pad up to the next square (the MeshNoc::side() trap).
  EXPECT_THROW(noc::resolve_topology("mesh:4x4", 12), Error);
  EXPECT_THROW(noc::resolve_topology("ring:8", 12), Error);
  EXPECT_THROW(noc::resolve_topology("1", 4), Error);
}

// ---- routing tables ----------------------------------------------------------

/// Every fabric: all pairs reachable, dist symmetric, triangle inequality
/// via next_hop chains (each step moves exactly one closer).
void check_routing_invariants(const Topology& topo) {
  const i64 n = topo.nodes();
  for (i32 s = 0; s < n; ++s) {
    for (i32 d = 0; d < n; ++d) {
      if (s == d) {
        EXPECT_EQ(topo.hops(s, d), 0);
        continue;
      }
      EXPECT_GT(topo.hops(s, d), 0) << s << "->" << d;
      EXPECT_EQ(topo.hops(s, d), topo.hops(d, s)) << s << "->" << d;
      // Walking preferred next hops reaches d in exactly hops() steps.
      i32 at = s;
      i32 steps = 0;
      while (at != d) {
        const i32 nxt = topo.next_hop(at, d);
        EXPECT_EQ(topo.hops(nxt, d), topo.hops(at, d) - 1) << s << "->" << d << " at " << at;
        at = nxt;
        ASSERT_LE(++steps, topo.hops(s, d) + 1) << "routing loop " << s << "->" << d;
      }
      EXPECT_EQ(steps, topo.hops(s, d)) << s << "->" << d;
    }
  }
}

TEST(Topology, RoutingInvariantsHoldOnEveryKind) {
  for (const char* text : {"mesh:1x2", "mesh:4x4", "mesh:3x5", "torus:4x4", "torus:2x7",
                           "ring:9", "crossbar:6"}) {
    SCOPED_TRACE(text);
    check_routing_invariants(Topology::build(TopologySpec::parse(text)));
  }
}

TEST(Topology, MeshHopsAreManhattanAndRoutingIsXY) {
  const Topology topo = Topology::build(TopologySpec::parse("mesh:4x4"));
  const auto rc = [](i32 v) { return std::pair<i32, i32>{v / 4, v % 4}; };
  for (i32 s = 0; s < 16; ++s) {
    for (i32 d = 0; d < 16; ++d) {
      const auto [sr, sc] = rc(s);
      const auto [dr, dc] = rc(d);
      EXPECT_EQ(topo.hops(s, d), std::abs(sr - dr) + std::abs(sc - dc));
      if (s == d) continue;
      // Dimension order: all X (column) moves happen before any Y move —
      // deadlock-free XY routing.  The first hop changes the column whenever
      // the columns differ.
      const auto [nr, nc] = rc(topo.next_hop(s, d));
      if (sc != dc) {
        EXPECT_EQ(nr, sr) << s << "->" << d;
        EXPECT_EQ(std::abs(nc - sc), 1) << s << "->" << d;
      } else {
        EXPECT_EQ(nc, sc) << s << "->" << d;
        EXPECT_EQ(std::abs(nr - sr), 1) << s << "->" << d;
      }
    }
  }
  // Corner-to-corner depth on a 4x4 mesh: 3 + 3.
  EXPECT_EQ(topo.depth(), 6);
}

TEST(Topology, TorusWrapsAndRingIsACycle) {
  const Topology torus = Topology::build(TopologySpec::parse("torus:4x4"));
  // Opposite corners are 2 hops by wrapping both dimensions, not 6.
  EXPECT_EQ(torus.hops(0, 15), 2);
  EXPECT_EQ(torus.hops(0, 3), 1);   // row wrap
  EXPECT_EQ(torus.hops(0, 12), 1);  // column wrap
  EXPECT_EQ(torus.depth(), 4);      // farthest node (2,2): 2 + 2 wrapped hops

  const Topology ring = Topology::build(TopologySpec::parse("ring:8"));
  EXPECT_EQ(ring.hops(0, 4), 4);  // antipode
  EXPECT_EQ(ring.hops(0, 7), 1);  // wraparound
  EXPECT_EQ(ring.depth(), 4);
  EXPECT_EQ(ring.num_links(), 16u);  // 8 undirected = 16 directed
}

TEST(Topology, CrossbarIsTwoHopsThroughTheSwitch) {
  const Topology xbar = Topology::build(TopologySpec::parse("crossbar:6"));
  for (i32 s = 0; s < 6; ++s)
    for (i32 d = 0; d < 6; ++d)
      EXPECT_EQ(xbar.hops(s, d), s == d ? 0 : 2);
  EXPECT_EQ(xbar.depth(), 2);
  EXPECT_EQ(xbar.num_links(), 12u);  // one in + one out port per node
}

TEST(Topology, RouteAccumulatesPerLinkBytes) {
  const Topology topo = Topology::build(TopologySpec::parse("mesh:2x2"));
  std::vector<Bytes> link_bytes(topo.num_links(), 0);
  // 0 -> 3 on a 2x2 mesh is 2 hops; XY order goes through node 1 (column
  // move first), never node 2.
  EXPECT_EQ(topo.route(0, 3, 100, &link_bytes), 2);
  Bytes total = 0;
  for (const Bytes b : link_bytes) total += b;
  EXPECT_EQ(total, 200);  // 100 bytes on each of 2 links
  // The same transfer again doubles the same links.
  EXPECT_EQ(topo.route(0, 3, 100, &link_bytes), 2);
  Bytes max_link = 0;
  for (const Bytes b : link_bytes) max_link = std::max(max_link, b);
  EXPECT_EQ(max_link, 200);
  // Self-route costs nothing.
  EXPECT_EQ(topo.route(2, 2, 100, &link_bytes), 0);
}

TEST(Topology, LinksAreDirectedAndCoverBothDirections) {
  for (const char* text : {"mesh:3x3", "torus:3x3", "ring:5", "crossbar:4"}) {
    SCOPED_TRACE(text);
    const Topology topo = Topology::build(TopologySpec::parse(text));
    std::set<std::pair<i32, i32>> seen;
    for (const noc::Link& l : topo.links()) {
      EXPECT_NE(l.src, l.dst);
      EXPECT_TRUE(seen.emplace(l.src, l.dst).second) << "duplicate link";
    }
    for (const auto& [src, dst] : seen)
      EXPECT_TRUE(seen.count({dst, src})) << src << "->" << dst << " has no reverse";
  }
}

}  // namespace
