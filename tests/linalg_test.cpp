// Tests for the functional linear-algebra substrate: dense kernels, SpMM,
// block CG (Algorithm 1) and BiCGStab.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/block_cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/spmm.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace cello;
using linalg::DenseMatrix;

DenseMatrix random_matrix(i64 r, i64 c, Rng& rng) {
  DenseMatrix m(r, c);
  for (i64 i = 0; i < r; ++i)
    for (i64 j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  return m;
}

TEST(Dense, GemmAgainstHandComputed) {
  DenseMatrix a(2, 3), b(3, 2), c(2, 2);
  double v = 1;
  for (i64 i = 0; i < 2; ++i)
    for (i64 j = 0; j < 3; ++j) a(i, j) = v++;
  v = 1;
  for (i64 i = 0; i < 3; ++i)
    for (i64 j = 0; j < 2; ++j) b(i, j) = v++;
  linalg::gemm(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(Dense, GemmTransposesConsistent) {
  Rng rng(9);
  const auto a = random_matrix(4, 6, rng);
  const auto b = random_matrix(6, 5, rng);
  DenseMatrix c_ref(4, 5), c_t(4, 5);
  linalg::gemm(a, b, c_ref);

  // (A^T)^T * B computed via transpose_a on a pre-transposed A.
  DenseMatrix at(6, 4);
  for (i64 i = 0; i < 4; ++i)
    for (i64 j = 0; j < 6; ++j) at(j, i) = a(i, j);
  linalg::gemm(at, b, c_t, /*transpose_a=*/true);
  EXPECT_LT(linalg::max_abs_diff(c_ref, c_t), 1e-12);

  DenseMatrix bt(5, 6);
  for (i64 i = 0; i < 6; ++i)
    for (i64 j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  DenseMatrix c_bt(4, 5);
  linalg::gemm(a, bt, c_bt, false, /*transpose_b=*/true);
  EXPECT_LT(linalg::max_abs_diff(c_ref, c_bt), 1e-12);
}

TEST(Dense, GemmAccumulateAndAlpha) {
  Rng rng(10);
  const auto a = random_matrix(3, 3, rng);
  const auto b = random_matrix(3, 3, rng);
  DenseMatrix c(3, 3, 1.0);
  linalg::gemm(a, b, c, false, false, 2.0, /*accumulate=*/true);
  DenseMatrix ref(3, 3);
  linalg::gemm(a, b, ref);
  for (i64 i = 0; i < 3; ++i)
    for (i64 j = 0; j < 3; ++j) EXPECT_NEAR(c(i, j), 1.0 + 2.0 * ref(i, j), 1e-12);
}

TEST(Dense, GemmShapeMismatchThrows) {
  DenseMatrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(linalg::gemm(a, b, c), Error);
}

TEST(Dense, AddProductAliasSafe) {
  // P = R + P * Phi writes into an operand it reads — the CG line-7 shape.
  Rng rng(11);
  const auto r = random_matrix(5, 3, rng);
  auto p = random_matrix(5, 3, rng);
  const auto p_copy = p;
  const auto phi = random_matrix(3, 3, rng);

  DenseMatrix expected(5, 3);
  linalg::add_product(r, p_copy, phi, expected);
  linalg::add_product(r, p, phi, p);  // aliased output
  EXPECT_LT(linalg::max_abs_diff(expected, p), 1e-12);
}

TEST(Dense, AddProductSign) {
  Rng rng(12);
  const auto a = random_matrix(4, 2, rng);
  const auto b = random_matrix(4, 2, rng);
  const auto s = random_matrix(2, 2, rng);
  DenseMatrix plus(4, 2), minus(4, 2);
  linalg::add_product(a, b, s, plus, +1.0);
  linalg::add_product(a, b, s, minus, -1.0);
  for (i64 i = 0; i < 4; ++i)
    for (i64 j = 0; j < 2; ++j)
      EXPECT_NEAR(plus(i, j) + minus(i, j), 2.0 * a(i, j), 1e-12);
}

TEST(Dense, InverseOfRandomSpd) {
  Rng rng(13);
  const i64 n = 8;
  auto m = random_matrix(n, n, rng);
  for (i64 i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);  // well-conditioned
  const auto inv = linalg::inverse(m);
  DenseMatrix prod(n, n);
  linalg::gemm(m, inv, prod);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j) EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Dense, InverseSingularThrows) {
  DenseMatrix m(2, 2);  // all zeros
  EXPECT_THROW(linalg::inverse(m), Error);
}

TEST(Dense, Norms) {
  DenseMatrix m(2, 2);
  m(0, 0) = 3;
  m(1, 0) = 4;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_col_norm(), 5.0);
}

TEST(Spmm, MatchesDenseReference) {
  Rng rng(14);
  const i64 m = 60, n = 7;
  const auto a = sparse::make_fem_banded(m, 360, rng);
  const auto b = random_matrix(m, n, rng);
  DenseMatrix c(m, n);
  linalg::spmm(a, b, c);

  // Dense reference.
  DenseMatrix a_dense(m, m);
  for (i64 r = 0; r < m; ++r)
    for (i64 k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      a_dense(r, a.col_idx()[k]) = a.values()[k];
  DenseMatrix ref(m, n);
  linalg::gemm(a_dense, b, ref);
  EXPECT_LT(linalg::max_abs_diff(c, ref), 1e-10);
  EXPECT_EQ(linalg::spmm_macs(a, n), a.nnz() * n);
}

// ---- block CG (Algorithm 1) ------------------------------------------------

class BlockCgTest : public ::testing::TestWithParam<i64> {};  // param: N rhs

TEST_P(BlockCgTest, SolvesSpdSystem) {
  const i64 n_rhs = GetParam();
  Rng rng(15);
  const i64 m = 300;
  const auto a = sparse::make_fem_banded(m, 2100, rng);
  const auto x_true = random_matrix(m, n_rhs, rng);
  DenseMatrix b(m, n_rhs);
  // b = A * x_true.
  linalg::spmm(a, x_true, b);

  const auto res = linalg::block_cg(a, b, {.max_iterations = 400, .tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linalg::max_abs_diff(res.x, x_true), 1e-6);
}

TEST_P(BlockCgTest, ResidualDecreasesMonotonicallyOverall) {
  const i64 n_rhs = GetParam();
  Rng rng(16);
  const i64 m = 200;
  const auto a = sparse::make_fem_banded(m, 1200, rng);
  const auto b = random_matrix(m, n_rhs, rng);
  const auto res = linalg::block_cg(a, b, {.max_iterations = 50, .tolerance = 1e-12});
  ASSERT_GE(res.residual_history.size(), 2u);
  EXPECT_LT(res.residual_history.back(), res.residual_history.front());
}

INSTANTIATE_TEST_SUITE_P(RhsSweep, BlockCgTest, ::testing::Values<i64>(1, 4, 16));

TEST(BlockCg, TraceMatchesAlgorithmLineOrder) {
  Rng rng(17);
  const auto a = sparse::make_fem_banded(64, 400, rng);
  const auto b = random_matrix(64, 2, rng);
  std::vector<std::string> lines;
  linalg::block_cg(a, b, {.max_iterations = 3, .tolerance = 0, .fixed_iterations = true},
                   [&](const std::string& line, const std::string&) { lines.push_back(line); });
  // Three full iterations of 1,2a,2b,3,4,5,6,7.
  const std::vector<std::string> expected_iter = {"1", "2a", "2b", "3", "4", "5", "6", "7"};
  ASSERT_EQ(lines.size(), 24u);
  for (size_t i = 0; i < lines.size(); ++i) EXPECT_EQ(lines[i], expected_iter[i % 8]);
}

TEST(BlockCg, FixedIterationsRunExactly) {
  Rng rng(18);
  const auto a = sparse::make_fem_banded(64, 400, rng);
  const auto b = random_matrix(64, 2, rng);
  const auto res =
      linalg::block_cg(a, b, {.max_iterations = 10, .tolerance = 1e-3, .fixed_iterations = true});
  EXPECT_EQ(res.iterations, 10);
}

// ---- BiCGStab ----------------------------------------------------------------

TEST(BiCgStab, SolvesDiagonallyDominantSystem) {
  Rng rng(19);
  const i64 m = 400;
  const auto a = sparse::make_circuit(m, 2800, rng);
  std::vector<double> x_true(m), b(m);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.spmv(x_true, b);

  const auto res = linalg::bicgstab(a, b, {.max_iterations = 400, .tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  double err = 0;
  for (i64 i = 0; i < m; ++i) err = std::max(err, std::abs(res.x[i] - x_true[i]));
  EXPECT_LT(err, 1e-6);
}

TEST(BiCgStab, ResidualHistoryShrinks) {
  Rng rng(20);
  const auto a = sparse::make_fem_banded(200, 1200, rng);
  std::vector<double> b(200, 1.0);
  const auto res = linalg::bicgstab(
      a, b, {.max_iterations = 20, .tolerance = 1e-14, .fixed_iterations = true});
  ASSERT_GE(res.residual_history.size(), 2u);
  EXPECT_LT(res.residual_history.back(), res.residual_history.front());
}

}  // namespace
