// Tests for the set-associative cache baselines: LRU semantics against a
// naive reference model, BRRIP scan resistance, and stats accounting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <map>
#include <tuple>

#include "cache/cache.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace cello;
using cache::Policy;
using cache::SetAssocCache;

TEST(Cache, ConstructionValidatesGeometry) {
  SetAssocCache c(1024, 16, 4, Policy::Lru);
  EXPECT_EQ(c.num_sets(), 16u);
  EXPECT_EQ(c.associativity(), 4u);
  EXPECT_THROW(SetAssocCache(1000, 16, 7, Policy::Lru), Error);  // not divisible
}

TEST(Cache, HitAfterFill) {
  SetAssocCache c(1024, 16, 4, Policy::Lru);
  c.access(0x100, false);
  EXPECT_EQ(c.stats().misses, 1u);
  c.access(0x104, false);  // same line
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, LruEvictsOldest) {
  // 1 set of 2 ways: capacity 32B, line 16B, assoc 2 -> 1 set.
  SetAssocCache c(32, 16, 2, Policy::Lru);
  c.access(0 * 16, false);
  c.access(1 * 16, false);
  c.access(0 * 16, false);  // touch line 0 -> line 1 is LRU
  c.access(2 * 16, false);  // evicts line 1
  EXPECT_TRUE(c.contains(0 * 16));
  EXPECT_FALSE(c.contains(1 * 16));
  EXPECT_TRUE(c.contains(2 * 16));
}

TEST(Cache, DirtyEvictionWritesBack) {
  SetAssocCache c(32, 16, 2, Policy::Lru);
  c.access(0 * 16, true);   // dirty
  c.access(1 * 16, false);
  c.access(2 * 16, false);  // evicts dirty line 0
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.stats().dram_write_bytes, 16u);
}

TEST(Cache, FlushDrainsDirtyLines) {
  SetAssocCache c(64, 16, 4, Policy::Lru);
  c.access(0, true);
  c.access(16, true);
  c.access(32, false);
  c.flush();
  EXPECT_EQ(c.stats().writebacks, 2u);
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, AccessRangeTouchesEveryLine) {
  SetAssocCache c(1024, 16, 4, Policy::Lru);
  c.access_range(8, 40, false);  // lines 0,1,2
  EXPECT_EQ(c.stats().accesses, 3u);
  c.access_range(0, 0, false);  // empty range: no access
  EXPECT_EQ(c.stats().accesses, 3u);
}

TEST(Cache, StatsConservation) {
  Rng rng(21);
  SetAssocCache c(512, 16, 4, Policy::Lru);
  for (int i = 0; i < 5000; ++i) c.access(rng.bounded(4096) & ~0xFull, rng.uniform() < 0.3);
  const auto& s = c.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.dram_read_bytes, s.misses * 16);
  EXPECT_EQ(s.tag_lookups, s.accesses);
}

TEST(Cache, BrripResistsScanning) {
  // Hot set of 4 lines in one set + a long streaming scan through the same
  // set: BRRIP should keep more of the hot set resident than LRU.
  const Bytes capacity = 8 * 16;  // 1 set, 8 ways
  auto run = [&](Policy p) {
    SetAssocCache c(capacity, 16, 8, p);
    u64 hot_hits = 0;
    for (int round = 0; round < 200; ++round) {
      for (int h = 0; h < 4; ++h) {
        const u64 before = c.stats().hits;
        c.access(static_cast<Addr>(h) * 16, false);
        hot_hits += c.stats().hits - before;
      }
      // Scan: 16 distinct lines that map to the same (only) set.
      for (int sline = 0; sline < 16; ++sline)
        c.access(0x10000 + (static_cast<Addr>(round * 16 + sline)) * 16, false);
    }
    return hot_hits;
  };
  const u64 lru_hits = run(Policy::Lru);
  const u64 brrip_hits = run(Policy::Brrip);
  EXPECT_GT(brrip_hits, lru_hits);
}

// ---- property test: LRU cache vs a naive reference model -------------------

struct CacheGeom {
  Bytes capacity;
  u32 line;
  u32 assoc;
};

class LruReferenceTest : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(LruReferenceTest, MatchesNaiveModelOnRandomTrace) {
  const auto g = GetParam();
  SetAssocCache c(g.capacity, g.line, g.assoc, Policy::Lru);
  const u64 sets = (g.capacity / g.line) / g.assoc;

  // Reference: per set, a recency-ordered deque of tags.
  std::map<u64, std::deque<u64>> ref;
  u64 ref_hits = 0, ref_misses = 0;

  Rng rng(12345);
  for (int i = 0; i < 20000; ++i) {
    const Addr addr = (rng.bounded(256) * g.line);
    const u64 line_id = addr / g.line;
    const u64 set = line_id % sets;
    const u64 tag = line_id / sets;
    auto& dq = ref[set];
    auto it = std::find(dq.begin(), dq.end(), tag);
    if (it != dq.end()) {
      ++ref_hits;
      dq.erase(it);
      dq.push_front(tag);
    } else {
      ++ref_misses;
      dq.push_front(tag);
      if (dq.size() > g.assoc) dq.pop_back();
    }
    c.access(addr, false);
    ASSERT_EQ(c.stats().hits, ref_hits) << "at access " << i;
    ASSERT_EQ(c.stats().misses, ref_misses) << "at access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LruReferenceTest,
    // The last two geometries have a non-power-of-two set count (12) and a
    // non-power-of-two line size (24B, 10 sets): they pin the division
    // fallback path to the same semantics as the shift/mask fast path.
    ::testing::Values(CacheGeom{256, 16, 2}, CacheGeom{512, 16, 4}, CacheGeom{1024, 16, 8},
                      CacheGeom{2048, 32, 4}, CacheGeom{768, 16, 4}, CacheGeom{960, 24, 4}),
    [](const ::testing::TestParamInfo<CacheGeom>& info) {
      return "cap" + std::to_string(info.param.capacity) + "_l" +
             std::to_string(info.param.line) + "_a" + std::to_string(info.param.assoc);
    });

TEST(Cache, PolicyNames) {
  EXPECT_STREQ(cache::to_string(Policy::Lru), "LRU");
  EXPECT_STREQ(cache::to_string(Policy::Brrip), "BRRIP");
}

TEST(Cache, AccessRangeSpansSetWraparound) {
  // 16 sets of 4 ways.  A range crossing line 16 wraps the set index back to
  // 0 while bumping the tag; every covered line must land in its own set.
  SetAssocCache c(1024, 16, 4, Policy::Lru);
  ASSERT_EQ(c.num_sets(), 16u);
  c.access_range(14 * 16, 5 * 16, false);  // lines 14..18: sets 14,15,0,1,2
  EXPECT_EQ(c.stats().accesses, 5u);
  EXPECT_EQ(c.stats().misses, 5u);
  for (u64 line = 14; line <= 18; ++line) EXPECT_TRUE(c.contains_line(line)) << line;
  // Line 16 (set 0, tag 1) must not alias line 0 (set 0, tag 0).
  EXPECT_FALSE(c.contains_line(0));
  // A range spanning several full wraps touches every line exactly once.
  SetAssocCache d(1024, 16, 4, Policy::Lru);
  d.access_range(0, 48 * 16, false);  // 48 lines over 16 sets: tags 0..2
  EXPECT_EQ(d.stats().accesses, 48u);
  EXPECT_EQ(d.stats().misses, 48u);
  for (u64 line = 0; line < 48; ++line) EXPECT_TRUE(d.contains_line(line)) << line;
}

TEST(Cache, BrripAgingSaturates) {
  // One set, 4 ways, all hot (RRPV==0 after hits).  A fill then needs three
  // aging rounds to surface an RRPV==3 victim; the search must terminate and
  // evict exactly one resident line.
  SetAssocCache c(64, 16, 4, Policy::Brrip);
  for (u64 l = 0; l < 4; ++l) c.access_line(l, false);
  for (u64 l = 0; l < 4; ++l) c.access_line(l, false);  // hits: all RRPV -> 0
  EXPECT_EQ(c.stats().hits, 4u);
  c.access_line(100, false);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_TRUE(c.contains_line(100));
  int resident = 0;
  for (u64 l = 0; l < 4; ++l) resident += c.contains_line(l) ? 1 : 0;
  EXPECT_EQ(resident, 3);
}

TEST(Cache, FlushWritebackCounts) {
  SetAssocCache c(1024, 16, 4, Policy::Lru);
  c.access_range(0, 5 * 16, true);    // 5 dirty lines
  c.access_range(5 * 16, 3 * 16, false);  // 3 clean lines
  c.flush();
  EXPECT_EQ(c.stats().writebacks, 5u);
  EXPECT_EQ(c.stats().dram_write_bytes, 5u * 16);
  // Everything is invalid now; a second flush drains nothing.
  c.flush();
  EXPECT_EQ(c.stats().writebacks, 5u);
  // Re-dirtying a line after flush writes back again.
  c.access(0, true);
  c.flush();
  EXPECT_EQ(c.stats().writebacks, 6u);
}

TEST(Cache, SimdAndScalarPathsAgree) {
  // The default 8-way geometry may dispatch to the AVX2 probe; forcing the
  // scalar path via CELLO_DISABLE_AVX2 must not change a single stat.  (On
  // hosts without AVX2 both caches take the scalar path and this is trivial.)
  for (Policy p : {Policy::Lru, Policy::Brrip}) {
    SetAssocCache dispatched(4096, 16, 8, p);
    ASSERT_EQ(setenv("CELLO_DISABLE_AVX2", "1", 1), 0);
    SetAssocCache scalar(4096, 16, 8, p);
    unsetenv("CELLO_DISABLE_AVX2");

    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
      const Addr addr = rng.bounded(16384);
      const Bytes len = 1 + rng.bounded(200);
      const bool w = rng.uniform() < 0.3;
      dispatched.access_range(addr, len, w);
      scalar.access_range(addr, len, w);
      const auto& a = dispatched.stats();
      const auto& b = scalar.stats();
      ASSERT_EQ(a.hits, b.hits) << "op " << i;
      ASSERT_EQ(a.misses, b.misses) << "op " << i;
      ASSERT_EQ(a.evictions, b.evictions) << "op " << i;
      ASSERT_EQ(a.writebacks, b.writebacks) << "op " << i;
    }
    dispatched.flush();
    scalar.flush();
    EXPECT_EQ(dispatched.stats().writebacks, scalar.stats().writebacks) << to_string(p);
    EXPECT_EQ(dispatched.stats().dram_bytes(), scalar.stats().dram_bytes()) << to_string(p);
  }
}

TEST(Cache, BulkAccessMatchesPerLineLoop) {
  // The coalesced access_lines walk must be indistinguishable — stats and
  // final contents — from the naive per-line access() loop, for both
  // replacement policies, on random (addr, len, rw) traces.
  for (Policy p : {Policy::Lru, Policy::Brrip}) {
    SetAssocCache bulk(2048, 16, 4, p);
    SetAssocCache perline(2048, 16, 4, p);
    Rng rng(97);
    for (int i = 0; i < 2000; ++i) {
      const Addr addr = rng.bounded(8192);
      const Bytes len = 1 + rng.bounded(400);
      const bool w = rng.uniform() < 0.4;
      bulk.access_range(addr, len, w);
      const Addr first = addr / 16, last = (addr + len - 1) / 16;
      for (Addr line = first; line <= last; ++line) perline.access(line * 16, w);

      const auto& a = bulk.stats();
      const auto& b = perline.stats();
      ASSERT_EQ(a.accesses, b.accesses) << "op " << i;
      ASSERT_EQ(a.hits, b.hits) << "op " << i;
      ASSERT_EQ(a.misses, b.misses) << "op " << i;
      ASSERT_EQ(a.evictions, b.evictions) << "op " << i;
      ASSERT_EQ(a.writebacks, b.writebacks) << "op " << i;
      ASSERT_EQ(a.dram_read_bytes, b.dram_read_bytes) << "op " << i;
      ASSERT_EQ(a.dram_write_bytes, b.dram_write_bytes) << "op " << i;
      ASSERT_EQ(a.tag_lookups, b.tag_lookups) << "op " << i;
      ASSERT_EQ(a.data_accesses, b.data_accesses) << "op " << i;
    }
    bulk.flush();
    perline.flush();
    EXPECT_EQ(bulk.stats().writebacks, perline.stats().writebacks) << to_string(p);
  }
}

}  // namespace
