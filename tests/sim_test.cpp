// Tests for the simulation engine: traffic formulas, configuration ordering,
// address mapping and the NoC model.
#include <gtest/gtest.h>

#include <set>

#include "cello/cello.hpp"
#include "noc/mesh.hpp"
#include "sim/address_map.hpp"
#include "sim/engine.hpp"
#include "sparse/datasets.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigKind;

workloads::CgShape small_cg() {
  workloads::CgShape s;
  s.m = 9604;
  s.n = 16;
  s.nnz = 85264;
  s.iterations = 5;
  return s;
}

workloads::CgShape big_cg() {
  workloads::CgShape s;
  s.m = 81920;
  s.n = 16;
  s.nnz = 327680;
  s.iterations = 5;
  return s;
}

TEST(AddressMap, GroupsInstancesByBase) {
  const auto dag = workloads::build_cg_dag(small_cg());
  const auto map = sim::AddressMap::build(dag);
  // 5 iterations of 8 tensors collapse into 9 bases + 4 initials share bases.
  i32 p_base = -1;
  for (const auto& t : dag.tensors()) {
    if (workloads::base_name(t.name) == "P") {
      if (p_base < 0) p_base = map.base_id(t.id);
      EXPECT_EQ(map.base_id(t.id), p_base) << t.name;
    }
  }
  EXPECT_GE(p_base, 0);
}

TEST(AddressMap, RangesAreDisjoint) {
  const auto dag = workloads::build_cg_dag(small_cg());
  const auto map = sim::AddressMap::build(dag);
  for (size_t i = 0; i + 1 < map.entries.size(); ++i)
    EXPECT_GE(map.entries[i + 1].start, map.entries[i].start + map.entries[i].bytes);
}

TEST(AddressMap, EntrySizedForLargestInstance) {
  const auto dag = workloads::build_cg_dag(small_cg());
  const auto map = sim::AddressMap::build(dag);
  for (const auto& t : dag.tensors()) EXPECT_GE(map.of(t.id).bytes, t.bytes());
}

TEST(Engine, FlexagonTrafficIsExactColdSum) {
  // Oracle op-by-op: every unique operand of every op moves exactly once.
  const auto dag = workloads::build_gnn_dag({1000, 5000, 64, 16});
  AcceleratorConfig arch;
  const auto m = sim::simulate(dag, ConfigKind::Flexagon, arch);
  Bytes expected = 0;
  for (const auto& op : dag.ops()) {
    std::set<ir::TensorId> seen;
    for (auto in : op.inputs)
      if (seen.insert(in).second) expected += dag.tensor(in).bytes();
    expected += dag.tensor(op.output).bytes();
  }
  EXPECT_EQ(m.dram_bytes, expected);
}

TEST(Engine, FlatSkipsPipelinedIntermediate) {
  const auto dag = workloads::build_gnn_dag({1000, 5000, 64, 16});
  AcceleratorConfig arch;
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, arch);
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  ir::TensorId h = dag.edge(0).tensor;
  EXPECT_EQ(flat.dram_bytes, flex.dram_bytes - 2 * dag.tensor(h).bytes());
}

TEST(Engine, CelloEqualsFlatOnGnn) {
  // Fig. 13: "CELLO achieves the same performance as FLAT" for GNN layers.
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  AcceleratorConfig arch;
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  EXPECT_EQ(cello.dram_bytes, flat.dram_bytes);
  EXPECT_DOUBLE_EQ(cello.seconds, flat.seconds);
}

TEST(Engine, FlatAndSetEqualFlexagonOnCg) {
  // Sec. VII-C1: every CG intermediate has a delayed downstream consumer, so
  // pipelining-only and hold-only schedulers gain nothing.
  const auto dag = workloads::build_cg_dag(big_cg());
  AcceleratorConfig arch;
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, arch);
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  const auto set = sim::simulate(dag, ConfigKind::Set, arch);
  EXPECT_EQ(flat.dram_bytes, flex.dram_bytes);
  EXPECT_EQ(set.dram_bytes, flex.dram_bytes);
}

TEST(Engine, CelloBeatsAllBaselinesOnCg) {
  const auto dag = workloads::build_cg_dag(big_cg());
  AcceleratorConfig arch;
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  for (ConfigKind k : {ConfigKind::Flexagon, ConfigKind::Flat, ConfigKind::Set,
                       ConfigKind::PreludeOnly}) {
    const auto base = sim::simulate(dag, k, arch);
    EXPECT_LT(cello.dram_bytes, base.dram_bytes) << sim::to_string(k);
    EXPECT_LT(cello.seconds, base.seconds) << sim::to_string(k);
  }
}

TEST(Engine, RiffBeatsPreludeOnlyUnderContention) {
  // Fig. 16c: RIFF keeps frequently reused tensors resident when the working
  // set exceeds the buffer.
  const auto dag = workloads::build_cg_dag(big_cg());
  AcceleratorConfig arch;
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  const auto prelude = sim::simulate(dag, ConfigKind::PreludeOnly, arch);
  EXPECT_LT(cello.dram_bytes, prelude.dram_bytes);
}

TEST(Engine, SetMatchesCelloOnResNetAndBeatsFlat) {
  // Fig. 16a: SET handles the delayed-hold skip connection like Cello; FLAT
  // must spill the block input.
  const auto dag = workloads::build_resnet_block_dag({});
  AcceleratorConfig arch;
  arch.dram_bytes_per_sec = 250e9;
  const auto set = sim::simulate(dag, ConfigKind::Set, arch);
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  const auto flat = sim::simulate(dag, ConfigKind::Flat, arch);
  EXPECT_EQ(set.dram_bytes, cello.dram_bytes);
  EXPECT_GT(flat.dram_bytes, set.dram_bytes);
}

TEST(Engine, ResNetComputeBoundAtFullBandwidth) {
  // Sec. VII-C1: at 1 TB/s the residual block saturates compute.
  const auto dag = workloads::build_resnet_block_dag({});
  AcceleratorConfig arch;
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  const double compute_s = arch.compute_seconds(cello.total_macs);
  EXPECT_NEAR(cello.seconds, compute_s, compute_s * 0.35);
}

TEST(Engine, TrafficConservation) {
  const auto dag = workloads::build_cg_dag(small_cg());
  AcceleratorConfig arch;
  for (ConfigKind k : cello::all_configs()) {
    const auto m = sim::simulate(dag, k, arch);
    EXPECT_EQ(m.dram_bytes, m.dram_read_bytes + m.dram_write_bytes) << sim::to_string(k);
    EXPECT_GT(m.total_macs, 0) << sim::to_string(k);
    EXPECT_GT(m.seconds, 0.0) << sim::to_string(k);
  }
}

TEST(Engine, CacheConfigsRespondToRealMatrixStructure) {
  const auto spec = sparse::dataset_by_name("fv1");
  const auto matrix = sparse::instantiate(spec);
  workloads::CgShape s;
  s.m = spec.rows;
  s.n = 16;
  s.nnz = matrix.nnz();
  s.iterations = 2;
  const auto dag = workloads::build_cg_dag(s);
  AcceleratorConfig arch;
  const auto with = sim::simulate(dag, ConfigKind::FlexLru, arch, &matrix);
  const auto without = sim::simulate(dag, ConfigKind::FlexLru, arch, nullptr);
  EXPECT_GT(with.dram_bytes, 0u);
  EXPECT_GT(without.dram_bytes, 0u);
}

TEST(Engine, BandwidthScalesMemoryBoundRuntime) {
  const auto dag = workloads::build_cg_dag(big_cg());
  AcceleratorConfig fast, slow;
  fast.dram_bytes_per_sec = 1e12;
  slow.dram_bytes_per_sec = 250e9;
  const auto f = sim::simulate(dag, ConfigKind::Flexagon, fast);
  const auto s = sim::simulate(dag, ConfigKind::Flexagon, slow);
  EXPECT_NEAR(s.seconds / f.seconds, 4.0, 0.2);  // memory bound: ~4x slower
}

TEST(Engine, LargerChordReducesTraffic) {
  // Fig. 16b SRAM sweep shape: bigger CHORD, less DRAM.
  const auto dag = workloads::build_cg_dag(big_cg());
  AcceleratorConfig small, large;
  small.sram_bytes = 1ull << 20;
  large.sram_bytes = 16ull << 20;
  const auto m_small = sim::simulate(dag, ConfigKind::Cello, small);
  const auto m_large = sim::simulate(dag, ConfigKind::Cello, large);
  EXPECT_LT(m_large.dram_bytes, m_small.dram_bytes);
}

TEST(Engine, BicgstabCelloWins) {
  workloads::BiCgStabShape s;
  s.m = 81920;
  s.nnz = 327680;
  s.iterations = 5;
  const auto dag = workloads::build_bicgstab_dag(s);
  AcceleratorConfig arch;
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, arch);
  const auto cello = sim::simulate(dag, ConfigKind::Cello, arch);
  EXPECT_LT(cello.dram_bytes, flex.dram_bytes);
}

TEST(Engine, TrafficByTensorAccountsEverything) {
  const auto dag = workloads::build_cg_dag(small_cg());
  AcceleratorConfig arch;
  const auto m = sim::simulate(dag, ConfigKind::Cello, arch);
  Bytes sum = 0;
  for (const auto& [base, b] : m.traffic_by_tensor) sum += b;
  EXPECT_EQ(sum, m.dram_bytes);
}

// ---- NoC model ---------------------------------------------------------------

TEST(Noc, HopCounts) {
  noc::MeshNoc mesh;
  mesh.nodes = 16;
  EXPECT_EQ(mesh.side(), 4);
  EXPECT_EQ(mesh.broadcast_hops(), 6);
  mesh.nodes = 1;
  EXPECT_EQ(mesh.broadcast_hops(), 0);
}

TEST(Noc, ScoreDataflowMovesLessForSkewedShapes) {
  // Sec. V-B: M >> N * hops, so cluster-local pipelines win decisively.
  noc::MeshNoc mesh;
  mesh.nodes = 16;
  const auto t = noc::compare_multinode(1000000, 16, 16, mesh);
  EXPECT_GT(t.ratio(), 1000.0);
}

TEST(Noc, NaiveWinsOnlyForTinyM) {
  noc::MeshNoc mesh;
  mesh.nodes = 64;
  const auto t = noc::compare_multinode(16, 16, 16, mesh);
  EXPECT_LT(t.ratio(), 1.0);
}

}  // namespace
